//! Divergence determinism: the trial scheduler's `Diverged` verdict is a
//! *semantic* output, so it must be bit-identical — same gate, same
//! detector, same iteration, same trailing arc sequence — across every
//! engine configuration, cold and warm, exactly like the constraint sets
//! are. And on circuits that do converge, the scheduler must be
//! invisible: scheduler-on output ≡ scheduler-off output on all bundled
//! benchmarks and corpus golden fixtures.

use proptest::prelude::*;
use si_redress::core::{CoreError, DivergencePolicy, Engine, EngineConfig};
use si_redress::corpus::{generate, strategies, CorpusSpec, MarkingStyle};
use si_redress::synth::synthesize;

/// The canonical diverging specimen: seed 189 (`corpus-000000bd`), whose
/// gate `o2` never converges.
fn seed_189() -> (si_redress::stg::Stg, si_redress::boolean::GateLibrary) {
    let spec = CorpusSpec::from_seed(189, 12);
    let circuit = generate(&spec, 189);
    let library = synthesize(&circuit.stg, EngineConfig::default().global_sg_budget)
        .expect("seed 189 synthesizes");
    (circuit.stg, library)
}

#[test]
fn seed_189_verdict_is_identical_across_the_differential_matrix() {
    let (stg, library) = seed_189();
    // A small watchdog window keeps 64 full derivations affordable in
    // debug builds; the window is held constant across the matrix, so
    // the determinism claim is exercised in full. (The default-window
    // verdict and its sub-second wall clock are pinned by the golden
    // suite.)
    let window = 16;
    let expected = Engine::new(EngineConfig {
        divergence_window: window,
        ..EngineConfig::default()
    })
    .run(&stg, &library)
    .expect_err("seed 189 must diverge");
    assert!(
        matches!(&expected, CoreError::Diverged { gate, .. } if gate == "o2"),
        "got: {expected}"
    );
    for incremental in [false, true] {
        for memo_projection in [false, true] {
            for cache in [false, true] {
                for sigma_cold in [false, true] {
                    for jobs in [1usize, 4] {
                        let config = EngineConfig {
                            incremental,
                            memo_projection,
                            cache,
                            // Exercised through `cache` pairing; holding it
                            // equal to `incremental` keeps the matrix at 32
                            // configs while still covering both values.
                            incremental_classify: incremental,
                            sigma_cold,
                            jobs,
                            divergence_window: window,
                            ..EngineConfig::default()
                        };
                        let engine = Engine::new(config);
                        let cold = engine.run(&stg, &library).expect_err("diverges");
                        assert_eq!(cold, expected, "cold run diverged under {config:?}");
                        let warm = engine.run(&stg, &library).expect_err("diverges");
                        assert_eq!(warm, expected, "warm run diverged under {config:?}");
                    }
                }
            }
        }
    }
}

/// The five corpus golden fixtures of `tests/golden.rs`, by value (the
/// generator promises byte-identical output per `(sanitized spec, seed)`
/// forever, so restating the literals here cannot drift).
fn corpus_fixture_specs() -> Vec<(CorpusSpec, u64)> {
    let base = CorpusSpec {
        signals: 6,
        choices: 0,
        or_density: 0,
        max_fork: 1,
        interleave: false,
        marking: MarkingStyle::ImplicitArcs,
    };
    vec![
        (base, 1),
        (
            CorpusSpec {
                signals: 10,
                max_fork: 3,
                ..base
            },
            7,
        ),
        (
            CorpusSpec {
                signals: 8,
                choices: 1,
                max_fork: 2,
                marking: MarkingStyle::ExplicitPlace,
                ..base
            },
            11,
        ),
        (
            CorpusSpec {
                signals: 9,
                choices: 2,
                or_density: 100,
                marking: MarkingStyle::ExplicitPlace,
                ..base
            },
            5,
        ),
        (
            CorpusSpec {
                signals: 12,
                choices: 2,
                or_density: 60,
                max_fork: 2,
                marking: MarkingStyle::ExplicitPlace,
                ..base
            },
            42,
        ),
    ]
}

#[test]
fn scheduler_on_equals_scheduler_off_on_all_converging_circuits() {
    // On every bundled benchmark and corpus golden fixture the loop
    // converges, so Bail vs Exhaust must be indistinguishable — the
    // scheduler may only ever change the outcome of a diverging gate.
    let bail = Engine::new(EngineConfig::default());
    assert_eq!(
        bail.config().divergence_policy,
        DivergencePolicy::Bail,
        "the engine default must be the bail-out policy"
    );
    let exhaust = Engine::new(EngineConfig {
        divergence_policy: DivergencePolicy::Exhaust,
        ..EngineConfig::default()
    });
    for bench in si_redress::suite::benchmarks() {
        let (stg, library) = bench.circuit().expect("loads");
        let on = bail.run(&stg, &library).expect("derives");
        let off = exhaust.run(&stg, &library).expect("derives");
        assert_eq!(on.report, off.report, "{}", bench.name);
        // The ledger was live (it observed every iteration) even though
        // nothing tripped.
        if on.report.iterations > 0 {
            let relax: usize = on.gates.iter().map(|g| g.sched_fingerprints).sum();
            assert!(relax > 0, "{}: scheduler never observed", bench.name);
        }
        let off_sched: usize = off.gates.iter().map(|g| g.sched_fingerprints).sum();
        assert_eq!(off_sched, 0, "{}: exhaust policy must not fingerprint", bench.name);
    }
    for (spec, seed) in corpus_fixture_specs() {
        let circuit = generate(&spec, seed);
        let library = synthesize(&circuit.stg, EngineConfig::default().global_sg_budget)
            .expect("fixture synthesizes");
        let on = bail.run(&circuit.stg, &library).expect("derives");
        let off = exhaust.run(&circuit.stg, &library).expect("derives");
        assert_eq!(on.report, off.report, "corpus fixture seed {seed}");
    }
}

#[test]
fn exhaust_policy_keeps_the_historical_budget_semantics() {
    // `derive_timing_constraints` runs under `EngineConfig::reference()`,
    // whose policy is Exhaust: it must keep the historical
    // burn-the-budget behaviour, erroring with the budget rather than a
    // divergence verdict. Pinned at the old 400-iteration harness cap —
    // the default 20 000 budget is exactly the hours-long tarpit the
    // scheduler exists to avoid.
    let (stg, library) = seed_189();
    let config = EngineConfig {
        expand_budget: 400,
        ..EngineConfig::reference()
    };
    assert_eq!(config.divergence_policy, DivergencePolicy::Exhaust);
    let err = Engine::new(config)
        .run(&stg, &library)
        .expect_err("never converges");
    assert!(
        matches!(err, CoreError::IterationBudgetExceeded { .. }),
        "the exhaust policy must burn the budget, got: {err}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// Random corpus circuits under an aggressively small watchdog
    /// window (8): trips are common, and whatever the verdict —
    /// convergence, divergence or any other error — it must be
    /// payload-identical across cache/incremental/parallel configs,
    /// cold and warm.
    #[test]
    fn random_circuits_agree_on_the_verdict_under_a_tiny_window(
        (spec, seed) in strategies::corpus_case()
    ) {
        let circuit = generate(&spec, seed);
        let budget = EngineConfig::default().global_sg_budget;
        let Ok(library) = synthesize(&circuit.stg, budget) else {
            // Interleaved specs may lack CSC; generation validity is
            // pinned elsewhere.
            return Ok(());
        };
        let window = 8;
        let configs = [
            EngineConfig { divergence_window: window, ..EngineConfig::default() },
            EngineConfig {
                divergence_window: window,
                divergence_policy: DivergencePolicy::Bail,
                ..EngineConfig::reference()
            },
            EngineConfig { divergence_window: window, ..EngineConfig::parallel(4) },
        ];
        let render = |r: &Result<si_redress::core::EngineReport, CoreError>| match r {
            Ok(out) => format!("ok|{:?}|{:?}", out.report.constraints, out.report.trace),
            Err(e) => format!("err|{e}"),
        };
        let engine = Engine::new(configs[0]);
        let expected = render(&engine.run(&circuit.stg, &library));
        let warm = render(&engine.run(&circuit.stg, &library));
        prop_assert_eq!(&warm, &expected);
        for config in &configs[1..] {
            let cold = render(&Engine::new(*config).run(&circuit.stg, &library));
            prop_assert_eq!(&cold, &expected);
        }
    }
}

//! Cross-crate integration: the full pipeline over the entire benchmark
//! corpus, exercising parser → decomposition → projection → synthesis →
//! relaxation → constraints → simulation in one flow.

use si_redress::core::AdversaryOracle;
use si_redress::prelude::*;

#[test]
fn the_headline_reduction_holds_across_the_suite() {
    // Thesis Table 7.2: roughly 40 % of adversary-path constraints are
    // unnecessary. Reconstructed circuits land in the same band: require
    // a strict overall reduction of at least 20 %.
    let (mut before, mut after) = (0usize, 0usize);
    for bench in si_redress::suite::benchmarks() {
        let (stg, library) = bench.circuit().expect("loads");
        let report = derive_timing_constraints(&stg, &library).expect("derives");
        assert!(
            report.constraints.len() <= report.baseline.len(),
            "{}: more constraints than baseline",
            bench.name
        );
        before += report.baseline.len();
        after += report.constraints.len();
    }
    assert!(before > 0);
    let ratio = after as f64 / before as f64;
    assert!(
        ratio < 0.80,
        "reduction too small: {after}/{before} = {ratio:.2}"
    );
    assert!(
        ratio > 0.40,
        "reduction suspiciously large: {after}/{before}"
    );
}

#[test]
fn every_derived_constraint_has_a_realizable_adversary_path() {
    for bench in si_redress::suite::benchmarks() {
        let (stg, library) = bench.circuit().expect("loads");
        let report = derive_timing_constraints(&stg, &library).expect("derives");
        let oracle = AdversaryOracle::new(&stg);
        for c in &report.constraints {
            let b = stg.signal_by_name(&c.before.signal).expect("declared");
            let a = stg.signal_by_name(&c.after.signal).expect("declared");
            let x =
                si_redress::stg::TransitionLabel::new(b, c.before.polarity, c.before.occurrence);
            let y = si_redress::stg::TransitionLabel::new(a, c.after.polarity, c.after.occurrence);
            assert!(
                oracle.path(x, y).is_some(),
                "{}: constraint {c} has no causal path",
                bench.name
            );
        }
    }
}

#[test]
fn synthesized_netlists_also_roundtrip_through_eqn() {
    // Write every synthesized netlist to the restricted EQN format, parse
    // it back, and confirm the same constraint sets fall out.
    for name in ["adfast", "converta", "nowick"] {
        let bench = si_redress::suite::benchmark(name).expect("bundled");
        let (stg, library) = bench.circuit().expect("loads");

        let mut netlist = si_redress::boolean::Netlist::default();
        for gate in &library.gates {
            let terms = gate
                .up
                .cubes()
                .iter()
                .map(|cube| {
                    cube.literals()
                        .map(|(v, pos)| (gate.vars[v].clone(), pos))
                        .collect::<Vec<_>>()
                })
                .collect();
            netlist.gates.push(si_redress::boolean::EqnGate {
                output: gate.output.clone(),
                terms,
            });
        }
        let text = si_redress::boolean::write_eqn(&netlist);
        let reparsed = GateLibrary::from_netlist(&parse_eqn(&text).expect("valid"));

        let direct = derive_timing_constraints(&stg, &library).expect("derives");
        let via_eqn = derive_timing_constraints(&stg, &reparsed).expect("derives");
        assert_eq!(direct.constraints, via_eqn.constraints, "{name}");
    }
}

#[test]
fn astg_writer_roundtrip_preserves_constraints() {
    for name in ["fifo", "imec-ram-read-sbuf"] {
        let bench = si_redress::suite::benchmark(name).expect("bundled");
        let (stg, library) = bench.circuit().expect("loads");
        let text = si_redress::stg::write_astg(&stg);
        let reparsed = parse_astg(&text).expect("round trip");
        let direct = derive_timing_constraints(&stg, &library).expect("derives");
        let via_text = derive_timing_constraints(&reparsed, &library).expect("derives");
        assert_eq!(direct.constraints, via_text.constraints, "{name}");
        assert_eq!(direct.baseline, via_text.baseline, "{name}");
    }
}

#[test]
fn relaxed_circuits_still_simulate_clean_with_mild_skew() {
    // The derived constraints are *sufficient*: any skew assignment that
    // respects them keeps the circuit hazard-free. Mild uniform jitter
    // respects every constraint (orderings hold by construction).
    for bench in si_redress::suite::benchmarks() {
        let (stg, library) = bench.circuit().expect("loads");
        let mut delays = DelayModel::uniform(40.0, 2.0, 90.0);
        // Slightly skew every branch of the first gate: still well within
        // every adversary path's slack (one gate delay ≈ 40 ps).
        if let Some(gate) = library.gates.first() {
            for v in &gate.vars {
                delays.set_wire(v, &gate.output, 7.0);
            }
        }
        let out = simulate(&stg, &library, &delays, 120).expect("simulates");
        assert!(
            out.glitches.is_empty(),
            "{}: {:?}",
            bench.name,
            out.glitches
        );
    }
}

#[test]
fn padding_plans_cover_all_strong_constraints() {
    for bench in si_redress::suite::benchmarks() {
        let (stg, library) = bench.circuit().expect("loads");
        let report = derive_timing_constraints(&stg, &library).expect("derives");
        let oracle = AdversaryOracle::new(&stg);
        let plan = si_redress::core::plan_padding(&stg, &oracle, &report.constraints, 5);
        let strong = report
            .constraints_within_level(&report.constraints, &oracle, &stg, 5)
            .len();
        assert_eq!(plan.entries.len(), strong, "{}", bench.name);
    }
}

//! Differential property of the staged engine: for every bundled
//! benchmark, the parallel + memoized pipeline must produce results
//! **bit-identical** to the sequential uncached path (the seed's
//! monolithic driver) — same baseline, same derived constraints, same
//! per-gate breakdown, same trace, same iteration counts. The
//! configuration matrix below covers every combination of the reuse
//! layers (`incremental`, `memo_projection`, `cache`) with the job-count
//! dimension, cold and warm, so no knob can silently diverge from the
//! reference path.

use si_redress::core::{Engine, EngineConfig, RelaxationOrder, Stage};
use si_redress::prelude::*;

#[test]
fn parallel_memoized_engine_is_bit_identical_to_the_sequential_uncached_path() {
    // One shared engine for the whole suite: the cache carries across
    // circuits, which is exactly the configuration that must not leak
    // state between benchmarks.
    let engine = Engine::new(EngineConfig::parallel(4));
    for bench in si_redress::suite::benchmarks() {
        let (stg, library) = bench.circuit().expect("loads");
        let reference = derive_timing_constraints(&stg, &library).expect("derives");
        let staged = engine.run(&stg, &library).expect("derives");
        assert_eq!(
            staged.report, reference,
            "{}: parallel+memoized output diverged from the sequential uncached path",
            bench.name
        );
    }
}

#[test]
fn every_reuse_layer_configuration_is_bit_identical_to_the_reference() {
    // {incremental} × {memo_projection} × {cache} × {incremental_classify}
    // × {sigma_cold} × {jobs 1, jobs 4}, cold and warm: 64 configurations
    // per benchmark, every one compared against the sequential uncached
    // reference — and the warm re-run (the all-hits path) compared again,
    // because memo bugs typically only bite on the second pass.
    for bench in si_redress::suite::benchmarks() {
        let (stg, library) = bench.circuit().expect("loads");
        let reference = derive_timing_constraints(&stg, &library).expect("derives");
        for incremental in [false, true] {
            for memo_projection in [false, true] {
                for cache in [false, true] {
                    for incremental_classify in [false, true] {
                        for sigma_cold in [false, true] {
                            for jobs in [1usize, 4] {
                                let config = EngineConfig {
                                    incremental,
                                    memo_projection,
                                    cache,
                                    incremental_classify,
                                    sigma_cold,
                                    jobs,
                                    ..EngineConfig::default()
                                };
                                let engine = Engine::new(config);
                                let cold = engine.run(&stg, &library).expect("derives");
                                assert_eq!(
                                    cold.report, reference,
                                    "{}: cold run diverged under {config:?}",
                                    bench.name
                                );
                                let warm = engine.run(&stg, &library).expect("derives");
                                assert_eq!(
                                    warm.report, reference,
                                    "{}: warm run diverged under {config:?}",
                                    bench.name
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn incremental_and_memo_layers_actually_engage() {
    // The matrix above proves the layers are *safe*; this pins that they
    // are *live* — a refactor that silently stops consulting a cache
    // would otherwise keep passing every differential.
    let bench = si_redress::suite::benchmark("imec-ram-read-sbuf").expect("bundled");
    let (stg, library) = bench.circuit().expect("loads");
    let engine = Engine::new(EngineConfig::default());
    let cold = engine.run(&stg, &library).expect("derives");
    let relax = cold.stage(Stage::Relax).expect("ran");
    assert!(
        relax.sg_inc_derived > 0,
        "a cold run must derive relaxation trials incrementally: {relax:?}"
    );
    let warm = engine.run(&stg, &library).expect("derives");
    let project = warm.stage(Stage::Project).expect("ran");
    assert!(
        project.proj_memo_hits > 0 && project.proj_memo_misses == 0,
        "a warm run must answer every projection from the memo: {project:?}"
    );
    assert!(
        warm.projections.hits >= project.proj_memo_hits,
        "engine-level projection counters must cover the warm run: {:?}",
        warm.projections
    );
    let warm_relax = warm.stage(Stage::Relax).expect("ran");
    assert_eq!(warm_relax.sg_cache_misses, 0, "{warm_relax:?}");
    assert!(
        warm_relax.sg_delta_hits > 0,
        "a warm run must answer repeated edits from the delta tier: {warm_relax:?}"
    );
    // The conformance tier added by this PR: a cold run must classify
    // trial SGs incrementally (copying unaffected verdicts), and a warm
    // run must answer repeated classifications from the verdict cache.
    assert!(
        relax.conf_inc_classified > 0,
        "a cold run must reclassify relaxation trials incrementally: {relax:?}"
    );
    assert!(
        warm_relax.conf_cache_hits > 0,
        "a warm run must answer repeated classifications from the verdict cache: {warm_relax:?}"
    );
    assert!(
        warm.conformance.hits >= warm_relax.conf_cache_hits,
        "engine-level conformance counters must cover the warm run: {:?}",
        warm.conformance
    );
}

#[test]
fn batch_entry_point_matches_per_circuit_runs() {
    let engine = Engine::new(EngineConfig::parallel(2));
    let entries = si_redress::suite::run_suite(&engine).expect("batch derives");
    assert_eq!(entries.len(), 13);
    for entry in &entries {
        let bench = si_redress::suite::benchmark(entry.name).expect("bundled");
        let (stg, library) = bench.circuit().expect("loads");
        let reference = derive_timing_constraints(&stg, &library).expect("derives");
        assert_eq!(entry.report.report, reference, "{}", entry.name);
    }
}

#[test]
fn memoization_pays_off_within_a_single_suite_pass() {
    // The refactor's point: local state graphs recur across the
    // conformance pre-checks, relaxation trials and re-checks. Over the
    // whole corpus the shared cache must serve a visible share of lookups.
    let engine = Engine::new(EngineConfig::default());
    si_redress::suite::run_suite(&engine).expect("batch derives");
    let stats = engine.cache_stats();
    assert!(
        stats.hits > 0,
        "no cache hits across the whole suite: {stats:?}"
    );
    assert!(stats.entries <= stats.misses, "{stats:?}");
}

#[test]
fn relaxation_order_is_respected_under_parallel_fanout() {
    let bench = si_redress::suite::benchmark("imec-ram-read-sbuf").expect("bundled");
    let (stg, library) = bench.circuit().expect("loads");
    for order in [
        RelaxationOrder::TightestFirst,
        RelaxationOrder::Lexicographic,
        RelaxationOrder::ContractionFirst,
    ] {
        let reference =
            si_redress::core::derive_timing_constraints_with_order(&stg, &library, order)
                .expect("derives");
        let engine = Engine::new(EngineConfig::parallel(4).with_order(order));
        let staged = engine.run(&stg, &library).expect("derives");
        assert_eq!(staged.report, reference, "{order:?}");
    }
}

#[test]
fn engine_report_metrics_are_coherent() {
    let bench = si_redress::suite::benchmark("imec-ram-read-sbuf").expect("bundled");
    let (stg, library) = bench.circuit().expect("loads");
    let engine = Engine::new(EngineConfig::parallel(4));
    let out = engine.run(&stg, &library).expect("derives");
    assert_eq!(out.gates.len(), out.report.per_gate.len());
    // Gate totals split across the project (pre-check) and relax stages.
    let project = out.stage(Stage::Project).expect("ran");
    let relax = out.stage(Stage::Relax).expect("ran");
    let gate_iterations: usize = out.gates.iter().map(|g| g.iterations).sum();
    assert_eq!(gate_iterations, out.report.iterations);
    let gate_misses: usize = out.gates.iter().map(|g| g.sg_cache_misses).sum();
    assert_eq!(gate_misses, project.sg_cache_misses + relax.sg_cache_misses);
    assert!(
        project.sg_cache_misses + project.sg_cache_hits > 0,
        "the conformance pre-check generates SGs in the project stage: {project:?}"
    );
    // The decompose stage carries the Table 7.2 state count.
    assert_eq!(
        out.stage(Stage::Decompose).expect("ran").states_explored,
        112
    );
    assert!(out.jobs >= 2, "parallel config must fan out: {}", out.jobs);
}

//! Golden conformance suite: one diff-friendly, human-readable snapshot
//! per bundled benchmark (styx-style, `tests/golden/*.txt`), capturing the
//! semantic payload of `check_hazard --format json` — both constraint
//! sets, the per-gate verdicts and the relaxation trace with its hazard
//! classifications.
//!
//! The files are generated from the *pinned sequential reference path*
//! (`derive_timing_constraints`, uncached, non-incremental); the test then
//! runs the full-featured engine (incremental regeneration, delta-tier
//! cache, projection memo) and requires its output to be bit-identical.
//! Any divergence between the fast path and the reference is caught here,
//! suite-wide.
//!
//! To regenerate after an intentional output change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! then review the diff like any other code change.

use std::fs;
use std::path::PathBuf;

use si_redress::core::{derive_timing_constraints, Engine, EngineConfig};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn header(name: &str) -> String {
    format!(
        "# Golden conformance snapshot for benchmark `{name}`: the semantic\n\
         # payload of `check_hazard --format json` (constraints, per-gate\n\
         # verdicts, hazard classifications), pinned by the sequential\n\
         # reference derivation. Regenerate with:\n\
         #   UPDATE_GOLDEN=1 cargo test --test golden\n"
    )
}

/// Points at the first diverging line of two snapshots.
fn first_diff(actual: &str, expected: &str) -> String {
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        if a != e {
            return format!(
                "first difference at line {}:\n  got:      {a}\n  expected: {e}",
                i + 1
            );
        }
    }
    format!(
        "one snapshot is a prefix of the other ({} vs {} lines)",
        actual.lines().count(),
        expected.lines().count()
    )
}

#[test]
fn golden_snapshots_pin_the_reference_output_for_every_benchmark() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    // One shared engine with every reuse layer on — exactly the
    // configuration whose output must never drift from the reference.
    let engine = Engine::new(EngineConfig::default());
    for bench in si_redress::suite::benchmarks() {
        let (stg, library) = bench.circuit().expect("loads");
        let path = golden_path(bench.name);
        if update {
            // Regenerate from the pinned reference path, not from the
            // engine under test: the files *are* the reference.
            let reference = derive_timing_constraints(&stg, &library).expect("derives");
            let contents = format!("{}{}", header(bench.name), reference.snapshot());
            fs::write(&path, contents)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        }
        let out = engine.run(&stg, &library).expect("derives");
        let rendered = format!("{}{}", header(bench.name), out.report.snapshot());
        let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot `{}`: {e}\n\
                 run `UPDATE_GOLDEN=1 cargo test --test golden` to create it",
                path.display()
            )
        });
        assert_eq!(
            rendered,
            expected,
            "golden snapshot mismatch for `{}` ({}).\n{}\n\
             If the output change is intentional, regenerate the snapshots\n\
             with `UPDATE_GOLDEN=1 cargo test --test golden` and review the\n\
             diff; otherwise the incremental/memoized engine has diverged\n\
             from the pinned sequential reference.",
            bench.name,
            path.display(),
            first_diff(&rendered, &expected),
        );
    }
}

#[test]
fn golden_directory_has_no_stale_snapshots() {
    // Every file in tests/golden must correspond to a bundled benchmark:
    // a renamed or removed benchmark must not leave an orphaned snapshot
    // silently pinning nothing.
    let names: Vec<&str> = si_redress::suite::benchmarks()
        .iter()
        .map(|b| b.name)
        .collect();
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for entry in fs::read_dir(&dir).expect("golden directory exists") {
        let path = entry.expect("readable entry").path();
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_string();
        assert!(
            names.contains(&stem.as_str()),
            "stale golden snapshot `{}` matches no bundled benchmark",
            path.display()
        );
    }
}

//! Golden conformance suite: one diff-friendly, human-readable snapshot
//! per bundled benchmark (styx-style, `tests/golden/*.txt`), capturing the
//! semantic payload of `check_hazard --format json` — both constraint
//! sets, the per-gate verdicts and the relaxation trace with its hazard
//! classifications.
//!
//! The files are generated from the *pinned sequential reference path*
//! (`derive_timing_constraints`, uncached, non-incremental); the test then
//! runs the full-featured engine (incremental regeneration, delta-tier
//! cache, projection memo) and requires its output to be bit-identical.
//! Any divergence between the fast path and the reference is caught here,
//! suite-wide.
//!
//! To regenerate after an intentional output change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! then review the diff like any other code change.

use std::fs;
use std::path::PathBuf;

use si_redress::core::{derive_timing_constraints, CoreError, Engine, EngineConfig};
use si_redress::corpus::{generate, generate_named, CorpusSpec, MarkingStyle};
use si_redress::synth::synthesize;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn header(name: &str) -> String {
    format!(
        "# Golden conformance snapshot for benchmark `{name}`: the semantic\n\
         # payload of `check_hazard --format json` (constraints, per-gate\n\
         # verdicts, hazard classifications), pinned by the sequential\n\
         # reference derivation. Regenerate with:\n\
         #   UPDATE_GOLDEN=1 cargo test --test golden\n"
    )
}

/// Points at the first diverging line of two snapshots.
fn first_diff(actual: &str, expected: &str) -> String {
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        if a != e {
            return format!(
                "first difference at line {}:\n  got:      {a}\n  expected: {e}",
                i + 1
            );
        }
    }
    format!(
        "one snapshot is a prefix of the other ({} vs {} lines)",
        actual.lines().count(),
        expected.lines().count()
    )
}

#[test]
fn golden_snapshots_pin_the_reference_output_for_every_benchmark() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    // One shared engine with every reuse layer on — exactly the
    // configuration whose output must never drift from the reference.
    let engine = Engine::new(EngineConfig::default());
    for bench in si_redress::suite::benchmarks() {
        let (stg, library) = bench.circuit().expect("loads");
        let path = golden_path(bench.name);
        if update {
            // Regenerate from the pinned reference path, not from the
            // engine under test: the files *are* the reference.
            let reference = derive_timing_constraints(&stg, &library).expect("derives");
            let contents = format!("{}{}", header(bench.name), reference.snapshot());
            fs::write(&path, contents)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        }
        let out = engine.run(&stg, &library).expect("derives");
        let rendered = format!("{}{}", header(bench.name), out.report.snapshot());
        let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot `{}`: {e}\n\
                 run `UPDATE_GOLDEN=1 cargo test --test golden` to create it",
                path.display()
            )
        });
        assert_eq!(
            rendered,
            expected,
            "golden snapshot mismatch for `{}` ({}).\n{}\n\
             If the output change is intentional, regenerate the snapshots\n\
             with `UPDATE_GOLDEN=1 cargo test --test golden` and review the\n\
             diff; otherwise the incremental/memoized engine has diverged\n\
             from the pinned sequential reference.",
            bench.name,
            path.display(),
            first_diff(&rendered, &expected),
        );
    }
}

/// Five pinned generator fixtures spanning the spec envelope: a plain
/// two-phase ring, a wide fork stage, a binary choice, an OR-causality
/// tail, and a mixed shape. All two-phase (`interleave: false`), so CSC
/// holds by construction and synthesis is guaranteed. Because the
/// generator promises byte-identical `.g` text per `(sanitized spec,
/// seed)` pair forever, these snapshots pin the *generator* as much as
/// the engine: a drifting generator shows up here before it silently
/// reshuffles every fuzz seed.
fn corpus_fixtures() -> Vec<(&'static str, CorpusSpec, u64)> {
    let base = CorpusSpec {
        signals: 6,
        choices: 0,
        or_density: 0,
        max_fork: 1,
        interleave: false,
        marking: MarkingStyle::ImplicitArcs,
    };
    vec![
        ("corpus-two-phase-ring", base, 1),
        (
            "corpus-forked-burst",
            CorpusSpec {
                signals: 10,
                max_fork: 3,
                ..base
            },
            7,
        ),
        (
            "corpus-choice-pair",
            CorpusSpec {
                signals: 8,
                choices: 1,
                max_fork: 2,
                marking: MarkingStyle::ExplicitPlace,
                ..base
            },
            11,
        ),
        (
            "corpus-or-tail",
            CorpusSpec {
                signals: 9,
                choices: 2,
                or_density: 100,
                marking: MarkingStyle::ExplicitPlace,
                ..base
            },
            5,
        ),
        (
            "corpus-mixed",
            CorpusSpec {
                signals: 12,
                choices: 2,
                or_density: 60,
                max_fork: 2,
                marking: MarkingStyle::ExplicitPlace,
                ..base
            },
            42,
        ),
    ]
}

#[test]
fn golden_snapshots_pin_the_reference_output_for_corpus_fixtures() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let engine = Engine::new(EngineConfig::default());
    let budget = engine.config().global_sg_budget;
    for (name, spec, seed) in corpus_fixtures() {
        let circuit = generate_named(&spec, seed, name);
        let library = synthesize(&circuit.stg, budget)
            .unwrap_or_else(|e| panic!("corpus fixture `{name}` must synthesize: {e}"));
        let path = golden_path(name);
        if update {
            let reference = derive_timing_constraints(&circuit.stg, &library).expect("derives");
            let contents = format!("{}{}", header(name), reference.snapshot());
            fs::write(&path, contents)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        }
        let out = engine.run(&circuit.stg, &library).expect("derives");
        let rendered = format!("{}{}", header(name), out.report.snapshot());
        let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot `{}`: {e}\n\
                 run `UPDATE_GOLDEN=1 cargo test --test golden` to create it",
                path.display()
            )
        });
        assert_eq!(
            rendered,
            expected,
            "golden snapshot mismatch for corpus fixture `{name}` ({}).\n{}\n\
             Either the engine diverged from the reference, or the corpus\n\
             generator's output drifted for a pinned (spec, seed) pair —\n\
             the latter breaks every recorded fuzz reproducer and needs a\n\
             deliberate decision, not a snapshot refresh.",
            path.display(),
            first_diff(&rendered, &expected),
        );
    }
}

/// Seed 189 (`corpus-000000bd`) is the canonical diverging specimen: one
/// gate's relaxation loop never converges, and before the trial scheduler
/// it burned whatever iteration budget it was given (the old 400-cap
/// still cost ~1 s; the default 20 000 budget meant hours). The regression
/// contract pinned here: at the *default* budget the full derivation
/// terminates deterministically, in well under a second, with a
/// `Diverged` verdict whose rendering — gate, detector, iteration and
/// trailing arc sequence — is golden-pinned.
#[test]
fn golden_snapshot_pins_the_seed_189_divergence() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let name = "corpus-000000bd-diverged";
    let spec = CorpusSpec::from_seed(189, 12);
    let circuit = generate(&spec, 189);
    let library = synthesize(&circuit.stg, EngineConfig::default().global_sg_budget)
        .expect("seed 189 synthesizes");
    let engine = Engine::new(EngineConfig::default());
    let started = std::time::Instant::now();
    let err = engine
        .run(&circuit.stg, &library)
        .expect_err("seed 189 must not converge");
    let elapsed = started.elapsed();
    assert!(
        matches!(err, CoreError::Diverged { .. }),
        "expected a Diverged verdict, got: {err}"
    );
    assert!(
        elapsed < std::time::Duration::from_secs(1),
        "seed 189 must bail in under a second at the default budget, took {elapsed:?}"
    );
    // A second, warm run of the same engine must reach the identical
    // verdict: the scheduler's inputs are cache-independent.
    assert_eq!(err, engine.run(&circuit.stg, &library).expect_err("warm"));

    let path = golden_path(name);
    let rendered = format!("{}{err}\n", header(name));
    if update {
        fs::write(&path, &rendered)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot `{}`: {e}\n\
             run `UPDATE_GOLDEN=1 cargo test --test golden` to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "golden divergence verdict drifted for `{name}` ({}).\n{}",
        path.display(),
        first_diff(&rendered, &expected),
    );
}

#[test]
fn golden_directory_has_no_stale_snapshots() {
    // Every file in tests/golden must correspond to a bundled benchmark:
    // a renamed or removed benchmark must not leave an orphaned snapshot
    // silently pinning nothing.
    let mut names: Vec<&str> = si_redress::suite::benchmarks()
        .iter()
        .map(|b| b.name)
        .collect();
    names.extend(corpus_fixtures().iter().map(|(name, _, _)| *name));
    names.push("corpus-000000bd-diverged");
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for entry in fs::read_dir(&dir).expect("golden directory exists") {
        let path = entry.expect("readable entry").path();
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_string();
        assert!(
            names.contains(&stem.as_str()),
            "stale golden snapshot `{}` matches no bundled benchmark or corpus fixture",
            path.display()
        );
    }
}

//! The gold test: thesis Sec. 7.3.1 prints, for `imec-ram-read-sbuf`, the
//! complete tool output — 19 adversary-path constraints before relaxation
//! and 12 relative timing constraints after. This test reproduces both
//! lists **exactly**, line for line.

use std::collections::BTreeSet;

use si_redress::prelude::*;

const EXPECTED_BEFORE: &[&str] = &[
    "ack: map0- < i0+",
    "wsen: wsldin+ < i2-",
    "prnot: precharged- < i4-",
    "wen: req+ < prnotin+",
    "wen: prnotin- < req+",
    "wsld: wenin+ < csc0-",
    "wsld: csc0- < wenin-",
    "csc0: wsldin- < i8+",
    "map0: csc0+ < wsldin-",
    "map0: wsldin+ < csc0+",
    "i0: precharged+ < wenin+",
    "i0: wenin- < precharged+",
    "i2: map0+ < csc0-",
    "i2: csc0+ < map0+",
    "i2: csc0- < map0-",
    "i4: wenin+ < req-",
    "i4: req- < wenin-",
    "i8: req+ < prnotin+",
    "i8: prnotin+ < req-",
];

const EXPECTED_AFTER: &[&str] = &[
    "ack: map0- < i0+",
    "wsen: wsldin+ < i2-",
    "wen: prnotin- < req+",
    "wsld: wenin+ < csc0-",
    "csc0: wsldin- < i8-",
    "map0: wsldin+ < csc0+",
    "i0: precharged+ < wenin+",
    "i0: wenin- < precharged-",
    "i2: map0+ < csc0-",
    "i2: csc0+ < map0-",
    "i4: wenin+ < req-",
    "i8: req+ < prnotin+",
];

fn derived() -> (BTreeSet<String>, BTreeSet<String>) {
    let bench = si_redress::suite::benchmark("imec-ram-read-sbuf").expect("bundled");
    let (stg, library) = bench.circuit().expect("loads");
    let report = derive_timing_constraints(&stg, &library).expect("derives");
    (
        report.baseline.iter().map(|c| c.to_string()).collect(),
        report.constraints.iter().map(|c| c.to_string()).collect(),
    )
}

#[test]
fn baseline_matches_the_thesis_printout_exactly() {
    let (before, _) = derived();
    let expected: BTreeSet<String> = EXPECTED_BEFORE.iter().map(|s| s.to_string()).collect();
    assert_eq!(before, expected);
}

#[test]
fn relaxed_set_matches_the_thesis_printout_exactly() {
    let (_, after) = derived();
    let expected: BTreeSet<String> = EXPECTED_AFTER.iter().map(|s| s.to_string()).collect();
    assert_eq!(after, expected);
}

#[test]
fn reduction_ratio_matches_table_7_2_row() {
    let (before, after) = derived();
    assert_eq!(before.len(), 19);
    assert_eq!(after.len(), 12);
}

#[test]
fn derivation_is_deterministic() {
    let first = derived();
    let second = derived();
    assert_eq!(first, second);
}

#[test]
fn relaxation_rewrites_three_constraint_endpoints() {
    // The thesis's subtle effect: three constraints change an endpoint
    // during relaxation instead of being merely kept or dropped
    // (wsldin- < i8+ becomes i8-, wenin- < precharged+ becomes
    // precharged-, csc0+ < map0+ becomes map0-).
    let (before, after) = derived();
    for rewritten in [
        "csc0: wsldin- < i8-",
        "i0: wenin- < precharged-",
        "i2: csc0+ < map0-",
    ] {
        assert!(after.contains(rewritten), "missing {rewritten}");
        assert!(
            !before.contains(rewritten),
            "{rewritten} already in baseline"
        );
    }
}

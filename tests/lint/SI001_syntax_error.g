# A place-to-place arc is not a valid `.g` line: arcs connect
# transitions to transitions or to explicit places.
.model si001
.inputs a
.graph
a+ a-
a- a+
p0 p1
.marking { <a-,a+> }
.end

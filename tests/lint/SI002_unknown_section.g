# `.frequency` is not an astg section this tool understands; the
# lenient parser skips it and keeps going.
.model si002
.inputs a
.frequency 50
.graph
a+ a-
a- a+
.marking { <a-,a+> }
.end

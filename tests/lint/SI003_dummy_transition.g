# Dummy (signal-less) transitions are outside the thesis's STG class;
# the derivation needs every transition tied to a signal edge.
.model si003
.inputs a
.dummy d0
.graph
a+ a-
a- a+
.marking { <a-,a+> }
.end

# `b` transitions appear in `.graph` but `b` is never declared; the
# lenient parser auto-declares it as an input and reports every use.
.model si004
.inputs a
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end

# `äck` transitions appear in `.graph` but `äck` is never declared.
# Non-ASCII signal names and a tab-indented graph line: columns count
# characters (not bytes) and the caret prefix keeps the tab, so the
# carets land exactly under `äck+` in any tab-width rendering.
.model si004u
.inputs möde
.graph
	möde+ äck+
äck+ möde-
möde- äck-
äck- möde+
.marking { <äck-,möde+> }
.end

# `a` is declared both as an input and as an output; the first
# declaration wins and the second is reported.
.model si005
.inputs a
.outputs a b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end

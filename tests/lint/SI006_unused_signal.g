# `zz` is declared but has no transition in `.graph`.
.model si006
.inputs a zz
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end

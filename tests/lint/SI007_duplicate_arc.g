# The arc a+ -> b+ is listed twice; the parser merges the copies and
# the linter flags the repetition.
.model si007
.inputs a
.outputs b
.graph
a+ b+
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end

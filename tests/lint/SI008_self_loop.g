# `a+ a+` creates an implicit place that transition a+ both consumes
# and produces — a self-loop, which breaks the marked-graph analyses.
.model si008
.inputs a
.graph
a+ a+
a+ a-
a- a+
.marking { <a-,a+> <a+,a+> }
.end

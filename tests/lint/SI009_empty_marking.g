# No place holds an initial token, so no transition can ever fire.
.model si009
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { }
.end

# The implicit place <b-,a+> starts with two tokens; the derivation
# requires 1-safe nets.
.model si010
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+>=2 }
.end

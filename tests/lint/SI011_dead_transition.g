# The main ring is marked, but p_dead can only be fed by c-, which
# itself needs c+ — a circular wait no token ever enters, so both c
# transitions are structurally dead.
.model si011
.inputs a c
.outputs b
.graph
a+ b+ c+
b+ a-
a- b-
b- a+
p_dead c+
c+ c-
c- p_dead
.marking { <b-,a+> }
.end

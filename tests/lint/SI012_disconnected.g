# The a-ring and the b-ring never synchronize: the specification
# splits into two disconnected components.
.model si012
.inputs a
.outputs b
.graph
a+ a-
a- a+
b+ b-
b- b+
.marking { <a-,a+> <b-,b+> }
.end

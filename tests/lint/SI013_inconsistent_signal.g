# Signal a rises twice (a+, a+/2) but never falls — on a marked graph
# every transition fires once per cycle, so the trace cannot alternate
# +/- and the STG is inconsistent.
.model si013
.inputs a
.outputs b
.graph
a+ b+
b+ a+/2
a+/2 b-
b- a+
.marking { <b-,a+> }
.end

# p0 chooses between a+ and b+, but b+ also waits on q — the classic
# non-free-choice confusion that defeats Hack's MG allocation.
.model si014
.inputs a b
.outputs c
.graph
p0 a+ b+
q b+
a+ c+
b+ c+
c+ a-
a- b-
b- c-
c- p0 q
.marking { p0 q }
.end

# p_join has two producers and the net has no choice anywhere: both
# a+ and b+ always fire, so p_join collects two tokens. OR-causality
# needs its sources separated by a choice.
.model si015
.inputs a b
.outputs c
.graph
a+ p_join
b+ p_join
p_join c+
c+ c-
c- a- b-
a- a+
b- b+
.marking { <a-,a+> <b-,b+> }
.end

# lint-budget: 3
# The harness reads the `lint-budget` comment above as the engine's
# state-graph budget: four transitions already need at least four
# states, so the derivation would exhaust the budget and fail.
.model si016
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end

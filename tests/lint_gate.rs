//! The corpus-wide lint gate: every specification this repository ships
//! — the thirteen Table 7.2 benchmarks, the extended circuits, and every
//! STG embedded in the `examples/` sources — must lint with zero
//! error-severity findings. (Warnings are allowed: e.g. `nowick` has a
//! legitimate choice-guarded merge place, SI015.)
//!
//! CI runs the same gate through the `si_lint` binary; this test keeps
//! it enforced by `cargo test` alone.

use si_redress::lint;

fn assert_error_free(origin: &str, text: &str) {
    let report = lint::lint_text(text);
    assert!(
        !report.has_errors(),
        "`{origin}` has lint errors:\n{}",
        lint::render_text(&report, text, origin)
    );
}

#[test]
fn every_bundled_benchmark_lints_error_free() {
    let benches = si_redress::suite::benchmarks();
    assert_eq!(benches.len(), 13);
    for bench in benches {
        assert_error_free(bench.name, bench.stg_text);
    }
}

#[test]
fn every_extended_circuit_lints_error_free() {
    for bench in si_redress::suite::extended() {
        assert_error_free(bench.name, bench.stg_text);
    }
}

/// Extracts `.model` … `.end` line runs — the same logic the `si_lint`
/// binary applies to `.rs` inputs.
fn embedded_blocks(source: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<Vec<&str>> = None;
    for line in source.lines() {
        let trimmed = line.trim();
        if current.is_none() && trimmed.starts_with(".model") {
            current = Some(Vec::new());
        }
        if let Some(block) = current.as_mut() {
            block.push(trimmed);
            if trimmed == ".end" {
                blocks.push(block.join("\n") + "\n");
                current = None;
            }
        }
    }
    blocks
}

#[test]
fn every_example_embedded_stg_lints_error_free() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut total = 0;
    for entry in std::fs::read_dir(dir).expect("examples/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().and_then(|x| x.to_str()) != Some("rs") {
            continue;
        }
        let source = std::fs::read_to_string(&path).expect("readable example");
        for (i, block) in embedded_blocks(&source).iter().enumerate() {
            total += 1;
            assert_error_free(&format!("{}#{}", path.display(), i + 1), block);
        }
    }
    assert!(
        total >= 2,
        "expected embedded STGs in examples/, found {total}"
    );
}

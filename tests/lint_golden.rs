//! Golden fixture corpus for the `si-lint` diagnostic catalogue: one
//! `.g` fixture per `SI0xx` code under `tests/lint/`, each pinned to its
//! exact human-readable (`.txt`) and JSON (`.json`) rendering — spans,
//! carets, related notes, fix hints and all.
//!
//! A fixture may carry a `# lint-budget: N` comment on any line; the
//! harness passes `N` as the engine's state-graph budget (this is how
//! the SI016 infeasibility estimate is exercised).
//!
//! To regenerate after an intentional output change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test lint_golden
//! ```
//!
//! then review the diff like any other code change.

use std::fs;
use std::path::PathBuf;

use si_redress::lint::{self, Code, LintOptions};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/lint")
}

/// All fixture `.g` files, sorted by name for deterministic reporting.
fn fixtures() -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(fixture_dir())
        .expect("tests/lint exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "g"))
        .collect();
    out.sort();
    assert!(!out.is_empty(), "no lint fixtures found");
    out
}

fn stem(path: &std::path::Path) -> String {
    path.file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default()
        .to_string()
}

/// The `SIxxx` prefix of a fixture's file name.
fn named_code(path: &std::path::Path) -> String {
    stem(path).split('_').next().unwrap_or_default().to_string()
}

/// Reads the optional `# lint-budget: N` magic comment.
fn budget_of(text: &str) -> Option<usize> {
    text.lines().find_map(|line| {
        line.strip_prefix("# lint-budget:")
            .and_then(|rest| rest.trim().parse().ok())
    })
}

/// Points at the first diverging line of two renderings.
fn first_diff(actual: &str, expected: &str) -> String {
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        if a != e {
            return format!(
                "first difference at line {}:\n  got:      {a}\n  expected: {e}",
                i + 1
            );
        }
    }
    format!(
        "one rendering is a prefix of the other ({} vs {} lines)",
        actual.lines().count(),
        expected.lines().count()
    )
}

#[test]
fn lint_fixtures_pin_text_and_json_renderings() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    for path in fixtures() {
        let text = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let opts = LintOptions {
            state_budget: budget_of(&text),
        };
        let report = lint::lint_text_with(&text, &opts);
        let origin = format!("{}.g", stem(&path));

        // The fixture must actually trigger the code it is named after.
        let code = named_code(&path);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code.to_string() == code),
            "fixture `{origin}` does not trigger {code}; got {:?}",
            report
                .diagnostics
                .iter()
                .map(|d| d.code.to_string())
                .collect::<Vec<_>>()
        );

        for (ext, rendered) in [
            ("txt", lint::render_text(&report, &text, &origin)),
            ("json", lint::render_json(&report, &origin)),
        ] {
            let golden = path.with_extension(ext);
            if update {
                fs::write(&golden, &rendered)
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", golden.display()));
            }
            let expected = fs::read_to_string(&golden).unwrap_or_else(|e| {
                panic!(
                    "missing lint golden `{}`: {e}\n\
                     run `UPDATE_GOLDEN=1 cargo test --test lint_golden` to create it",
                    golden.display()
                )
            });
            assert_eq!(
                rendered,
                expected,
                "lint golden mismatch for `{}`.\n{}\n\
                 If the output change is intentional, regenerate with\n\
                 `UPDATE_GOLDEN=1 cargo test --test lint_golden` and review the diff.",
                golden.display(),
                first_diff(&rendered, &expected),
            );
        }
    }
}

#[test]
fn lint_fixture_corpus_covers_every_code() {
    let names: Vec<String> = fixtures().iter().map(|p| named_code(p)).collect();
    for code in Code::ALL {
        assert!(
            names.iter().any(|n| *n == code.to_string()),
            "no fixture under tests/lint for {code} ({})",
            code.title()
        );
    }
}

#[test]
fn lint_fixture_directory_has_no_stale_goldens() {
    // Every .txt/.json must shadow a .g fixture, and nothing else may
    // live in the directory: a renamed fixture must not leave orphaned
    // goldens silently pinning nothing.
    let g_stems: Vec<String> = fixtures().iter().map(|p| stem(p)).collect();
    for entry in fs::read_dir(fixture_dir()).expect("tests/lint exists") {
        let path = entry.expect("readable entry").path();
        let ext = path
            .extension()
            .and_then(|x| x.to_str())
            .unwrap_or_default();
        match ext {
            "g" => {}
            "txt" | "json" => assert!(
                g_stems.contains(&stem(&path)),
                "stale lint golden `{}` matches no .g fixture",
                path.display()
            ),
            _ => panic!("unexpected file in tests/lint: {}", path.display()),
        }
    }
}

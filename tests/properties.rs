//! Property-based tests over randomly generated marked-graph STGs.
//!
//! Generator: a random ring of `k` signals' rising/falling transitions
//! (each `s+` before `s-`), one token closing the ring, plus random
//! forward chords with zero tokens. Rings of this shape are always live,
//! safe and consistent; forward chords preserve all three (a chord is
//! parallel to a ring segment, so every cycle through it contains the
//! ring token). The thesis invariants are then checked on random
//! relaxations, projections and redundancy sweeps.

use proptest::prelude::*;
use si_redress::core::relax_arc;
use si_redress::stg::{MgStg, SignalKind, StateGraph, TransitionLabel};
use si_redress::stg::{Polarity, SignalId, Stg};
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
struct RandomRing {
    signals: usize,
    order: Vec<usize>,           // permutation of 2k slots; slot -> signal
    chords: Vec<(usize, usize)>, // forward (i, j) positions, j > i + 1
}

fn ring_strategy() -> impl Strategy<Value = RandomRing> {
    (2usize..5)
        .prop_flat_map(|signals| {
            let slots = 2 * signals;
            let order = Just((0..signals).chain(0..signals).collect::<Vec<usize>>()).prop_shuffle();
            let chords = proptest::collection::vec(
                (0..slots, 0..slots).prop_filter_map("forward non-adjacent", move |(a, b)| {
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    (hi > lo + 1 && hi < slots).then_some((lo, hi))
                }),
                0..4,
            );
            (Just(signals), order, chords)
        })
        .prop_map(|(signals, order, chords)| RandomRing {
            signals,
            order,
            chords,
        })
}

/// Materializes the random ring as an `MgStg`. The i-th occurrence of a
/// signal in the shuffled order is its rising edge, the second its
/// falling edge — guaranteeing consistency.
fn build(ring: &RandomRing) -> MgStg {
    let mut stg = Stg::new("random-ring");
    let ids: Vec<SignalId> = (0..ring.signals)
        .map(|i| stg.add_signal(format!("s{i}"), SignalKind::Input))
        .collect();
    let mut mg = MgStg::empty_like(&stg);
    let mut seen = vec![0usize; ring.signals];
    let mut tids = Vec::new();
    for &sig in &ring.order {
        let polarity = if seen[sig] == 0 {
            Polarity::Plus
        } else {
            Polarity::Minus
        };
        seen[sig] += 1;
        tids.push(mg.add_transition(TransitionLabel::first(ids[sig], polarity)));
    }
    let slots = tids.len();
    for i in 0..slots {
        let tokens = u32::from(i + 1 == slots);
        mg.insert_arc(tids[i], tids[(i + 1) % slots], tokens, false);
    }
    for &(a, b) in &ring.chords {
        if a != b {
            mg.insert_arc(tids[a], tids[b], 0, false);
        }
    }
    mg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_rings_are_live_safe_consistent(ring in ring_strategy()) {
        let mg = build(&ring);
        prop_assert!(mg.is_live());
        prop_assert!(mg.is_safe());
        prop_assert!(StateGraph::of_mg(&mg, 100_000).is_ok());
    }

    #[test]
    fn redundancy_sweep_preserves_the_state_graph(ring in ring_strategy()) {
        let mg = build(&ring);
        let before = StateGraph::of_mg(&mg, 100_000).expect("consistent");
        let mut swept = mg.clone();
        swept.eliminate_redundant_arcs();
        let after = StateGraph::of_mg(&swept, 100_000).expect("consistent");
        prop_assert_eq!(before.state_count(), after.state_count());
        // Same language cardinality: edge counts agree too.
        let edges = |sg: &StateGraph| -> usize { sg.edges.iter().map(Vec::len).sum() };
        prop_assert_eq!(edges(&before), edges(&after));
    }

    #[test]
    fn relaxation_preserves_liveness_and_consistency(ring in ring_strategy()) {
        // Thesis Lemma 1 on arbitrary ring chords.
        let mg = build(&ring);
        let arcs: Vec<(usize, usize)> = mg
            .arcs()
            .filter(|&((a, b), attr)| {
                attr.tokens == 0 && !mg.label(a).same_signal(&mg.label(b))
            })
            .map(|(k, _)| k)
            .collect();
        for (a, b) in arcs {
            let mut relaxed = mg.clone();
            if relax_arc(&mut relaxed.clone(), a, b).is_err() {
                continue;
            }
            relax_arc(&mut relaxed, a, b).expect("checked");
            prop_assert!(relaxed.is_live(), "relaxing {a}->{b} killed liveness");
            prop_assert!(StateGraph::of_mg(&relaxed, 200_000).is_ok());
        }
    }

    #[test]
    fn relaxation_never_shrinks_the_state_space(ring in ring_strategy()) {
        let mg = build(&ring);
        let base = StateGraph::of_mg(&mg, 100_000).expect("consistent").state_count();
        let arcs: Vec<(usize, usize)> = mg
            .arcs()
            .filter(|&((a, b), attr)| {
                attr.tokens == 0 && !mg.label(a).same_signal(&mg.label(b))
            })
            .map(|(k, _)| k)
            .collect();
        if let Some(&(a, b)) = arcs.first() {
            let mut relaxed = mg.clone();
            if relax_arc(&mut relaxed, a, b).is_ok() {
                let grown =
                    StateGraph::of_mg(&relaxed, 200_000).expect("consistent").state_count();
                prop_assert!(grown >= base, "{grown} < {base}");
            }
        }
    }

    #[test]
    fn projection_keeps_liveness_safety_and_kept_signal_order(ring in ring_strategy()) {
        let mg = build(&ring);
        // Keep a random-but-deterministic half of the signals.
        let keep: BTreeSet<SignalId> =
            (0..ring.signals).step_by(2).map(SignalId).collect();
        let projected = mg.project(&keep).expect("projects");
        prop_assert!(projected.is_live());
        prop_assert!(projected.is_safe());
        // Every kept transition survives; every hidden one is gone.
        for t in projected.transitions() {
            prop_assert!(keep.contains(&projected.label(t).signal));
        }
        let kept_count = mg
            .transitions()
            .into_iter()
            .filter(|&t| keep.contains(&mg.label(t).signal))
            .count();
        prop_assert_eq!(projected.transitions().len(), kept_count);
        // Projection preserves the firing order of kept transitions: the
        // unique ring sequence restricted to kept signals matches.
        let trace = |g: &MgStg, n: usize| -> Vec<String> {
            let mut m = g.initial_marking();
            let mut out = Vec::new();
            let mut guard = 0;
            while out.len() < n && guard < 10 * n {
                guard += 1;
                let Some(t) = g.transitions().into_iter().find(|&t| g.enabled_in(t, &m))
                else {
                    break;
                };
                if keep.contains(&g.label(t).signal) {
                    out.push(g.label_string(t));
                }
                m = g.fire_in(t, &m);
            }
            out
        };
        let n = 2 * kept_count.max(1);
        prop_assert_eq!(trace(&mg, n), trace(&projected, n));
    }

    #[test]
    fn min_token_path_is_a_triangle_inequality(ring in ring_strategy()) {
        let mg = build(&ring);
        let ts = mg.transitions();
        for &a in ts.iter().take(4) {
            for &b in ts.iter().take(4) {
                for &c in ts.iter().take(4) {
                    if a == b || b == c || a == c {
                        continue;
                    }
                    if let (Some(ab), Some(bc)) =
                        (mg.min_token_path(a, b, false), mg.min_token_path(b, c, false))
                    {
                        let ac = mg.min_token_path(a, c, false).expect("composable");
                        prop_assert!(ac <= ab + bc, "{ac} > {ab} + {bc}");
                    }
                }
            }
        }
    }
}

/// Serializes the random ring as `.g` text — the same structure
/// [`build`] creates in memory, but through the parser's front door, so
/// the linter sees spans and all.
fn astg_text(ring: &RandomRing) -> String {
    let mut labels = Vec::new();
    let mut seen = vec![0usize; ring.signals];
    for &sig in &ring.order {
        let polarity = if seen[sig] == 0 { '+' } else { '-' };
        seen[sig] += 1;
        labels.push(format!("s{sig}{polarity}"));
    }
    let slots = labels.len();
    let mut text = String::from(".model random-ring\n.inputs");
    for i in 0..ring.signals {
        text.push_str(&format!(" s{i}"));
    }
    text.push_str("\n.graph\n");
    for i in 0..slots {
        text.push_str(&format!("{} {}\n", labels[i], labels[(i + 1) % slots]));
    }
    for &(a, b) in &ring.chords {
        text.push_str(&format!("{} {}\n", labels[a], labels[b]));
    }
    text.push_str(&format!(
        ".marking {{ <{},{}> }}\n.end\n",
        labels[slots - 1],
        labels[0]
    ));
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The linter never panics on — and never reports an error-severity
    /// finding for — a valid randomly generated marked graph. (Warnings
    /// are possible: a duplicated random chord is reported as SI007.)
    #[test]
    fn linter_accepts_every_generated_ring(ring in ring_strategy()) {
        let text = astg_text(&ring);
        let report = si_redress::lint::lint_text(&text);
        prop_assert!(
            !report.has_errors(),
            "lint errors on a valid MG:\n{}",
            si_redress::lint::render_text(&report, &text, "random-ring.g")
        );
        // And the rendered forms stay well-formed (no panics either).
        let _ = si_redress::lint::render_json(&report, "random-ring.g");
    }
}

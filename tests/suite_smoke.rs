//! Smoke test over the bundled benchmark corpus: every Table 7.2 entry
//! must load and synthesize. The criterion benches also panic with the
//! circuit name when a load fails; this test is the first line of
//! defence, reporting every broken circuit at once.

#[test]
fn all_bundled_benchmarks_load() {
    let suite = si_redress::suite::benchmarks();
    assert_eq!(suite.len(), 13, "Table 7.2 has thirteen rows");
    let mut broken = Vec::new();
    for bench in &suite {
        if let Err(e) = bench.circuit() {
            broken.push(format!("{}: {e}", bench.name));
        }
    }
    assert!(
        broken.is_empty(),
        "broken bundled circuits:\n{}",
        broken.join("\n")
    );
}

#[test]
fn benchmark_names_are_unique_and_resolvable() {
    let suite = si_redress::suite::benchmarks();
    for bench in &suite {
        let found = si_redress::suite::benchmark(bench.name)
            .unwrap_or_else(|| panic!("{} not resolvable by name", bench.name));
        assert_eq!(found.name, bench.name);
    }
    let mut names: Vec<_> = suite.iter().map(|b| b.name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), suite.len(), "duplicate benchmark names");
}

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of criterion's API that the workspace's bench targets use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::{iter, iter_batched}`, `BatchSize`). It
//! runs each benchmark a small, fixed number of iterations and prints
//! mean wall-clock time — enough to compile, smoke-run and compare
//! orders of magnitude, not a statistical replacement for criterion.

use std::time::{Duration, Instant};

/// How a batched benchmark sizes its input batches. The stand-in runs
/// one input per iteration regardless, so the variants only document
/// intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Timing loop handed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            elapsed: Duration::ZERO,
        }
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: u64, f: &mut F) {
    let mut bencher = Bencher::new(sample_size.max(1));
    f(&mut bencher);
    let per_iter = bencher.elapsed / bencher.iters.max(1) as u32;
    println!(
        "bench {id:<48} {per_iter:>12.2?}/iter ({} iters)",
        bencher.iters
    );
}

/// Re-export of the standard opaque-value hint, as criterion provides.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of proptest's API the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter_map` / `prop_shuffle`, range and tuple strategies,
//! [`strategy::Just`], `collection::{vec, btree_set}`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Generation is deterministic: each test function derives its RNG seed
//! from its own name, so failures reproduce run-to-run. There is no
//! shrinking — a failing case reports the generated input verbatim.

pub mod rng {
    /// SplitMix64 — tiny, deterministic, statistically fine for test-case
    /// generation.
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        pub fn from_seed(seed: u64) -> Self {
            Rng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[lo, hi)`. Panics on an empty range, like
        /// proptest does when asked to sample one.
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo < hi, "cannot sample from empty range {lo}..{hi}");
            lo + self.next_u64() % (hi - lo)
        }
    }

    /// FNV-1a over a test name, used to give each property its own seed.
    pub fn seed_of(name: &str, case: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h.wrapping_add(case.wrapping_mul(0x2545_f491_4f6c_dd1d))
    }
}

pub mod test_runner {
    /// Why a single generated case failed.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::rng::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut Rng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Retry generation until `f` returns `Some`. The reason string
        /// is reported if generation keeps failing.
        fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                reason,
                f,
            }
        }

        /// Retry generation until `f` accepts the value.
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }

        /// Uniformly permute a generated `Vec`.
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
        {
            Shuffle { inner: self }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    pub struct BoxedStrategy<T>(Box<dyn StrategyObject<Value = T>>);

    trait StrategyObject {
        type Value;
        fn generate_dyn(&self, rng: &mut Rng) -> Self::Value;
    }

    impl<S: Strategy> StrategyObject for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut Rng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut Rng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut Rng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    const MAX_REJECTS: u32 = 10_000;

    pub struct FilterMap<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S, F, O> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<O>,
    {
        type Value = O;
        fn generate(&self, rng: &mut Rng) -> O {
            for _ in 0..MAX_REJECTS {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map rejected too many candidates: {}",
                self.reason
            );
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut Rng) -> S::Value {
            for _ in 0..MAX_REJECTS {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected too many candidates: {}", self.reason);
        }
    }

    pub struct Shuffle<S> {
        inner: S,
    }

    impl<S, T> Strategy for Shuffle<S>
    where
        S: Strategy<Value = Vec<T>>,
    {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut Rng) -> Vec<T> {
            let mut v = self.inner.generate(rng);
            // Fisher–Yates.
            for i in (1..v.len()).rev() {
                let j = rng.below(0, (i + 1) as u64) as usize;
                v.swap(i, j);
            }
            v
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut Rng) -> $ty {
                    rng.below(self.start as u64, self.end as u64) as $ty
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut Rng) -> $ty {
                    rng.below(*self.start() as u64, *self.end() as u64 + 1) as $ty
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    impl Strategy for bool {
        type Value = bool;
        fn generate(&self, _rng: &mut Rng) -> bool {
            *self
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;

    /// A `Vec` of `0..size`-range-many elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut crate::rng::Rng) -> Vec<S::Value> {
            let n = self.size.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` built from `0..size`-range-many draws (duplicates
    /// collapse, so the set may be smaller than the drawn count — same
    /// contract as proptest).
    pub fn btree_set<S>(element: S, size: std::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut crate::rng::Rng) -> Self::Value {
            let n = self.size.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($pat:pat in $strat:expr) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let strat = $strat;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::rng::Rng::from_seed($crate::rng::seed_of(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                ));
                let value = $crate::strategy::Strategy::generate(&strat, &mut rng);
                let shown = format!("{:?}", value);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        let $pat = value;
                        $body
                        Ok(())
                    })();
                if let Err(err) = outcome {
                    panic!(
                        "property {} failed at case {}:\n{}\ninput: {}",
                        stringify!($name),
                        case,
                        err,
                        shown
                    );
                }
            }
        }
    )*};
}
